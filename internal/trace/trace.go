package trace

import (
	"fmt"

	"busprefetch/internal/memory"
)

// Kind identifies what an event does.
type Kind uint8

const (
	// Read is a demand data load.
	Read Kind = iota
	// Write is a demand data store.
	Write
	// Prefetch is a software cache prefetch in shared mode.
	Prefetch
	// PrefetchExcl is an exclusive-mode prefetch (EXCL strategy): the line
	// is fetched with ownership, invalidating other cached copies.
	PrefetchExcl
	// Lock acquires the mutex whose word is at Addr. The acquire performs an
	// exclusive (read-modify-write) access to the lock's line.
	Lock
	// Unlock releases the mutex at Addr with a store to the lock's line.
	Unlock
	// Barrier blocks until every processor has reached the barrier with the
	// same Addr (used as an identifier, not a memory location).
	Barrier
	numKinds
)

var kindNames = [numKinds]string{"read", "write", "prefetch", "prefetch-excl", "lock", "unlock", "barrier"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsDemand reports whether the event is a demand memory access observed by
// the CPU (the accesses whose misses constitute the CPU miss rate).
func (k Kind) IsDemand() bool { return k == Read || k == Write }

// IsPrefetch reports whether the event is a software prefetch of either mode.
func (k Kind) IsPrefetch() bool { return k == Prefetch || k == PrefetchExcl }

// IsSync reports whether the event is a synchronization operation.
func (k Kind) IsSync() bool { return k == Lock || k == Unlock || k == Barrier }

// Event is a single entry in a processor's stream.
type Event struct {
	// Addr is the byte address accessed (or the barrier identifier).
	Addr memory.Addr
	// Gap is the number of non-memory instructions executed immediately
	// before this event; each costs one CPU cycle.
	Gap uint32
	// Kind says what the event does.
	Kind Kind
}

func (e Event) String() string {
	return fmt.Sprintf("%s 0x%x (+%d)", e.Kind, uint64(e.Addr), e.Gap)
}

// Stream is the ordered event sequence executed by one processor.
type Stream []Event

// Trace is a complete multiprocessor trace.
type Trace struct {
	// Name identifies the workload that produced the trace.
	Name string
	// Streams holds one event stream per processor.
	Streams []Stream
}

// Procs returns the number of processors in the trace.
func (t *Trace) Procs() int { return len(t.Streams) }

// Events returns the total number of events across all streams.
func (t *Trace) Events() int {
	n := 0
	for _, s := range t.Streams {
		n += len(s)
	}
	return n
}

// DemandRefs returns the total number of demand data references (reads and
// writes, the denominator of the paper's miss rates) across all streams.
func (t *Trace) DemandRefs() int {
	n := 0
	for _, s := range t.Streams {
		for _, e := range s {
			if e.Kind.IsDemand() {
				n++
			}
		}
	}
	return n
}

// Clone returns a deep copy of the trace. Prefetch insertion clones so the
// original NP trace survives for the baseline run.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, Streams: make([]Stream, len(t.Streams))}
	for i, s := range t.Streams {
		c.Streams[i] = append(Stream(nil), s...)
	}
	return c
}

// Validate checks structural invariants: known event kinds, matched
// lock/unlock nesting per processor, and identical barrier sequences across
// processors (a requirement for the simulator's barrier replay to terminate).
func (t *Trace) Validate() error {
	var barrierSeq [][]memory.Addr
	for p, s := range t.Streams {
		held := map[memory.Addr]bool{}
		var barriers []memory.Addr
		for i, e := range s {
			if e.Kind >= numKinds {
				return fmt.Errorf("trace: proc %d event %d has unknown kind %d", p, i, e.Kind)
			}
			switch e.Kind {
			case Lock:
				if held[e.Addr] {
					return fmt.Errorf("trace: proc %d event %d re-acquires held lock 0x%x", p, i, uint64(e.Addr))
				}
				held[e.Addr] = true
			case Unlock:
				if !held[e.Addr] {
					return fmt.Errorf("trace: proc %d event %d releases unheld lock 0x%x", p, i, uint64(e.Addr))
				}
				delete(held, e.Addr)
			case Barrier:
				barriers = append(barriers, e.Addr)
			}
		}
		if len(held) != 0 {
			return fmt.Errorf("trace: proc %d ends holding %d locks", p, len(held))
		}
		barrierSeq = append(barrierSeq, barriers)
	}
	for p := 1; p < len(barrierSeq); p++ {
		if len(barrierSeq[p]) != len(barrierSeq[0]) {
			return fmt.Errorf("trace: proc %d has %d barriers, proc 0 has %d", p, len(barrierSeq[p]), len(barrierSeq[0]))
		}
		for i := range barrierSeq[p] {
			if barrierSeq[p][i] != barrierSeq[0][i] {
				return fmt.Errorf("trace: proc %d barrier %d is %d, proc 0 has %d", p, i, barrierSeq[p][i], barrierSeq[0][i])
			}
		}
	}
	return nil
}

// EstimatedCycles returns the CPU time the stream would take if every access
// hit: Gap cycles of instructions plus one cycle per event (each memory
// access, prefetch or sync operation costs at least its own cycle). The
// prefetch inserter uses this clock to place prefetches a given distance
// ahead of their target access.
func (s Stream) EstimatedCycles() uint64 {
	var c uint64
	for _, e := range s {
		c += uint64(e.Gap) + 1
	}
	return c
}
