package trace

import (
	"testing"

	"busprefetch/internal/memory"
)

func TestKindPredicates(t *testing.T) {
	if !Read.IsDemand() || !Write.IsDemand() {
		t.Error("reads and writes are demand accesses")
	}
	if Prefetch.IsDemand() || Lock.IsDemand() {
		t.Error("prefetch and lock are not demand accesses")
	}
	if !Prefetch.IsPrefetch() || !PrefetchExcl.IsPrefetch() {
		t.Error("both prefetch kinds are prefetches")
	}
	if !Lock.IsSync() || !Unlock.IsSync() || !Barrier.IsSync() {
		t.Error("sync predicates")
	}
	if Read.IsSync() || Read.IsPrefetch() {
		t.Error("read misclassified")
	}
}

func TestTraceCounts(t *testing.T) {
	tr := &Trace{Streams: []Stream{
		{
			{Kind: Read, Addr: 0, Gap: 2},
			{Kind: Write, Addr: 4},
			{Kind: Prefetch, Addr: 8},
			{Kind: Barrier, Addr: 0},
		},
		{
			{Kind: Read, Addr: 0},
			{Kind: Barrier, Addr: 0},
		},
	}}
	if tr.Procs() != 2 {
		t.Errorf("Procs = %d", tr.Procs())
	}
	if tr.Events() != 6 {
		t.Errorf("Events = %d", tr.Events())
	}
	if tr.DemandRefs() != 3 {
		t.Errorf("DemandRefs = %d", tr.DemandRefs())
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := &Trace{Name: "x", Streams: []Stream{{{Kind: Read, Addr: 1}}}}
	c := tr.Clone()
	c.Streams[0][0].Addr = 99
	if tr.Streams[0][0].Addr != 1 {
		t.Error("Clone shares event storage with the original")
	}
	if c.Name != "x" {
		t.Error("Clone lost the name")
	}
}

func TestValidateAcceptsLegalTrace(t *testing.T) {
	tr := &Trace{Streams: []Stream{
		{{Kind: Lock, Addr: 100}, {Kind: Read, Addr: 4}, {Kind: Unlock, Addr: 100}, {Kind: Barrier, Addr: 7}},
		{{Kind: Barrier, Addr: 7}},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}
}

func TestValidateRejectsUnbalancedLocks(t *testing.T) {
	cases := []struct {
		name   string
		stream Stream
	}{
		{"unlock without lock", Stream{{Kind: Unlock, Addr: 1}}},
		{"double lock", Stream{{Kind: Lock, Addr: 1}, {Kind: Lock, Addr: 1}}},
		{"lock never released", Stream{{Kind: Lock, Addr: 1}}},
	}
	for _, c := range cases {
		tr := &Trace{Streams: []Stream{c.stream}}
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateRejectsMismatchedBarriers(t *testing.T) {
	tr := &Trace{Streams: []Stream{
		{{Kind: Barrier, Addr: 1}},
		{{Kind: Barrier, Addr: 2}},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("mismatched barrier ids accepted")
	}
	tr2 := &Trace{Streams: []Stream{
		{{Kind: Barrier, Addr: 1}, {Kind: Barrier, Addr: 2}},
		{{Kind: Barrier, Addr: 1}},
	}}
	if err := tr2.Validate(); err == nil {
		t.Error("mismatched barrier counts accepted")
	}
}

func TestValidateRejectsUnknownKind(t *testing.T) {
	tr := &Trace{Streams: []Stream{{{Kind: Kind(200), Addr: 1}}}}
	if err := tr.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEstimatedCycles(t *testing.T) {
	s := Stream{
		{Kind: Read, Gap: 3},     // 3 instr + 1 access
		{Kind: Write, Gap: 0},    // 1 access
		{Kind: Prefetch, Gap: 2}, // 2 instr + the prefetch itself
	}
	if got := s.EstimatedCycles(); got != 8 {
		t.Errorf("EstimatedCycles = %d, want 8", got)
	}
}

func TestSharingProfile(t *testing.T) {
	g := memory.DefaultGeometry()
	tr := &Trace{Streams: []Stream{
		{{Kind: Read, Addr: 0}, {Kind: Read, Addr: 64}, {Kind: Write, Addr: 128}},
		{{Kind: Read, Addr: 64}, {Kind: Read, Addr: 128}},
	}}
	p := AnalyzeSharing(tr, g)
	if p.Use(0).WriteShared() || p.Use(0).SharedRead() {
		t.Error("line 0 is private")
	}
	if !p.Use(64).SharedRead() {
		t.Error("line 64 is read-shared")
	}
	if !p.Use(128).WriteShared() {
		t.Error("line 128 is write-shared (written by proc 0, read by proc 1)")
	}
	priv, rs, ws := p.Counts()
	if priv != 1 || rs != 1 || ws != 1 {
		t.Errorf("Counts = %d,%d,%d; want 1,1,1", priv, rs, ws)
	}
	lines := p.WriteSharedLines()
	if len(lines) != 1 || lines[0] != 128 {
		t.Errorf("WriteSharedLines = %v", lines)
	}
}

func TestSharingProfileCountsLockLinesAsWriteShared(t *testing.T) {
	g := memory.DefaultGeometry()
	tr := &Trace{Streams: []Stream{
		{{Kind: Lock, Addr: 256}, {Kind: Unlock, Addr: 256}},
		{{Kind: Lock, Addr: 256}, {Kind: Unlock, Addr: 256}},
	}}
	p := AnalyzeSharing(tr, g)
	if !p.WriteShared(256) {
		t.Error("lock line should be write-shared")
	}
}

func TestSharingProfileWordInLineSameLine(t *testing.T) {
	g := memory.DefaultGeometry()
	tr := &Trace{Streams: []Stream{
		{{Kind: Write, Addr: 4}},
		{{Kind: Read, Addr: 28}}, // same 32-byte line as address 4
	}}
	p := AnalyzeSharing(tr, g)
	if !p.WriteShared(4) || !p.WriteShared(28) {
		t.Error("accesses to different words of one line must share")
	}
}

func TestSummarize(t *testing.T) {
	g := memory.DefaultGeometry()
	tr := &Trace{Streams: []Stream{
		{
			{Kind: Read, Addr: 0},
			{Kind: Write, Addr: 64},
			{Kind: Prefetch, Addr: 128},
			{Kind: Lock, Addr: 192},
			{Kind: Unlock, Addr: 192},
			{Kind: Barrier, Addr: 0},
		},
		{
			{Kind: Read, Addr: 64},
			{Kind: Barrier, Addr: 0},
		},
	}}
	st := Summarize(tr, g)
	if st.Reads != 2 || st.Writes != 1 || st.Prefetches != 1 || st.Locks != 1 {
		t.Errorf("counts: %+v", st)
	}
	if st.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1 episode", st.Barriers)
	}
	// Only line 64 is shared: the lock line is touched by one process.
	if st.SharedData != g.LineSize {
		t.Errorf("SharedData = %d, want %d", st.SharedData, g.LineSize)
	}
}
