package workload

import (
	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// rng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms, which keeps traces reproducible without pulling in math/rand's
// global state.
type rng struct{ state uint64 }

func newRNG(seed int64, stream uint64) *rng {
	return &rng{state: uint64(seed)*0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Float returns a uniform float64 in [0, 1).
func (r *rng) Float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Chance reports true with probability p.
func (r *rng) Chance(p float64) bool { return r.Float() < p }

// builder accumulates one processor's event stream. Instruction work between
// memory references is recorded as the next event's Gap.
//
// With a nil sink the builder materializes: events grows without bound
// and holds the whole stream when emission finishes. With a sink the
// builder streams: whenever the current buffer fills, it is handed to
// the sink, which returns an empty buffer to keep filling (the
// trace.NewPipe flush function, delivering fixed-size pooled chunks
// downstream). Both modes append the same events in the same order, so
// a workload emits byte-identical streams either way.
type builder struct {
	events trace.Stream
	gap    uint32
	sink   func(trace.Stream) trace.Stream
}

// Instr records n instruction cycles of non-memory work.
func (b *builder) Instr(n int) { b.gap += uint32(n) }

// emit appends one event. The full-buffer path lives in refill so the
// per-event path tests a single condition: whether the builder streams
// or materializes is only decided when the buffer actually fills.
func (b *builder) emit(k trace.Kind, a memory.Addr) {
	if len(b.events) == cap(b.events) {
		b.refill()
	}
	b.events = append(b.events, trace.Event{Kind: k, Addr: a, Gap: b.gap})
	b.gap = 0
}

// refill makes room for at least one more event: streaming builders hand
// the full chunk to the sink and continue into the empty buffer it
// returns; materializing builders grow the backing array.
func (b *builder) refill() {
	if b.sink != nil {
		b.events = b.sink(b.events)
		return
	}
	grown := make(trace.Stream, len(b.events), 2*cap(b.events)+16)
	copy(grown, b.events)
	b.events = grown
}

// finish flushes the final partial chunk in streaming mode.
func (b *builder) finish() {
	if b.sink != nil {
		b.events = b.sink(b.events)
	}
}

// Read records a demand load of address a.
func (b *builder) Read(a memory.Addr) { b.emit(trace.Read, a) }

// Write records a demand store to address a.
func (b *builder) Write(a memory.Addr) { b.emit(trace.Write, a) }

// Lock records acquisition of the mutex at a.
func (b *builder) Lock(a memory.Addr) { b.emit(trace.Lock, a) }

// Unlock records release of the mutex at a.
func (b *builder) Unlock(a memory.Addr) { b.emit(trace.Unlock, a) }

// Barrier records arrival at barrier id.
func (b *builder) Barrier(id uint64) { b.emit(trace.Barrier, memory.Addr(id)) }

// Refs returns the number of demand references recorded so far.
func (b *builder) Refs() int {
	n := 0
	for _, e := range b.events {
		if e.Kind.IsDemand() {
			n++
		}
	}
	return n
}

// ReadRun reads words stride apart starting at a, touching n words.
func (b *builder) ReadRun(a memory.Addr, n int, stride int, instrBetween int) {
	for i := 0; i < n; i++ {
		b.Read(a + memory.Addr(i*stride))
		if instrBetween > 0 {
			b.Instr(instrBetween)
		}
	}
}
