// Package workload generates the multiprocessor address traces that stand in
// for the paper's MPTrace traces of five parallel C programs on a Sequent
// Symmetry (paper §3.2, Table 1).
//
// The original traces are not obtainable, so each program is replaced by a
// small deterministic kernel that executes the same *kind* of computation
// and reproduces the memory behaviour the paper reports for it: the ratio of
// data-set to cache size, the amount and granularity of write sharing, the
// false-sharing layout, the temporal locality, the synchronization style,
// and — after calibration — the resulting miss rates, processor utilizations
// and bus utilizations. The simulator consumes only the address streams, so
// matching those statistics is what preserves the paper's phenomena.
//
// All generators are deterministic in (Params.Seed, Params.Procs,
// Params.Scale): the same parameters always produce the identical trace.
package workload
