package workload

import (
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// These tests pin the structural properties each kernel was designed around
// (DESIGN.md §6), so a refactor that silently changes a workload's sharing
// behaviour fails loudly.

func sharingOf(t *testing.T, name string, restructured bool) (*trace.Trace, *trace.SharingProfile) {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := w.Generate(Params{Scale: 0.05, Seed: 1, Restructured: restructured})
	if err != nil {
		t.Fatal(err)
	}
	return tr, trace.AnalyzeSharing(tr, memory.DefaultGeometry())
}

func TestTopoptConflictPairLayout(t *testing.T) {
	// The original layout's signature: for each processor, private table A
	// and table B entries map to the same cache set (the conflict-miss
	// source); the restructured layout separates them.
	g := memory.DefaultGeometry()
	check := func(restructured bool) (collisions, total int) {
		w := Topopt()
		tr, _, err := w.Generate(Params{Scale: 0.02, Seed: 1, Restructured: restructured})
		if err != nil {
			t.Fatal(err)
		}
		// Identify table accesses by address range: they are the private
		// reads in the 0x1000_0000 region above the cells but below
		// scratch. Instead of parsing the layout, exploit the trace: the
		// colliding pair is two consecutive reads to addresses exactly one
		// cache size apart (original) — count consecutive read pairs that
		// share a set but not a line.
		for _, s := range tr.Streams {
			for i := 1; i < len(s); i++ {
				a, b := s[i-1], s[i]
				if a.Kind == trace.Read && b.Kind == trace.Read &&
					g.LineAddr(a.Addr) != g.LineAddr(b.Addr) &&
					g.SetIndex(a.Addr) == g.SetIndex(b.Addr) {
					collisions++
				}
				total++
			}
		}
		return collisions, total
	}
	orig, _ := check(false)
	restr, _ := check(true)
	if orig == 0 {
		t.Fatal("original topopt has no consecutive same-set read pairs (conflict source missing)")
	}
	if restr >= orig/2 {
		t.Errorf("restructured topopt still has %d same-set pairs (original %d)", restr, orig)
	}
}

func TestTopoptSharedDataStaysSmall(t *testing.T) {
	// The paper: Topopt is "still interesting because of the high degree of
	// write sharing and the large number of conflict misses it exhibits
	// even with the small shared data set size".
	w := Topopt()
	_, info, err := w.Generate(Params{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.SharedData > 32*1024 {
		t.Errorf("topopt shared data %d bytes should be smaller than the 32KB cache", info.SharedData)
	}
}

func TestMp3dInterleavedOwnershipFalselyShares(t *testing.T) {
	// Particle records are 12 bytes with group-interleaved ownership, so
	// lines crossing group boundaries are written by two owners.
	tr, prof := sharingOf(t, "mp3d", false)
	_ = tr
	multiWriter := 0
	for _, la := range prof.WriteSharedLines() {
		u := prof.Use(la)
		n := 0
		for w := u.Writers; w != 0; w &= w - 1 {
			n++
		}
		if n >= 2 {
			multiWriter++
		}
	}
	if multiWriter < 100 {
		t.Errorf("mp3d has only %d multi-writer lines; the interleaved particle array should produce hundreds", multiWriter)
	}
}

func TestPverifyValuesWriteShared(t *testing.T) {
	_, prof := sharingOf(t, "pverify", false)
	_, _, ws := prof.Counts()
	if ws < 500 {
		t.Errorf("pverify write-shared lines = %d; the interleaved value array should dominate", ws)
	}
}

func TestPverifyRestructuredReducesMultiWriterLines(t *testing.T) {
	_, orig := sharingOf(t, "pverify", false)
	_, restr := sharingOf(t, "pverify", true)
	count := func(p *trace.SharingProfile) int {
		n := 0
		for _, la := range p.WriteSharedLines() {
			u := p.Use(la)
			writers := 0
			for w := u.Writers; w != 0; w &= w - 1 {
				writers++
			}
			if writers >= 2 {
				n++
			}
		}
		return n
	}
	o, r := count(orig), count(restr)
	if r >= o/2 {
		t.Errorf("restructuring left %d multi-writer lines of %d — blocking failed", r, o)
	}
}

func TestWaterMostlyReadSharing(t *testing.T) {
	// Water's molecule lines are read by everyone and written only by their
	// owner (plus the lock-guarded energy line): write-shared lines should
	// carry a single writer almost everywhere.
	_, prof := sharingOf(t, "water", false)
	single, multi := 0, 0
	for _, la := range prof.WriteSharedLines() {
		u := prof.Use(la)
		writers := 0
		for w := u.Writers; w != 0; w &= w - 1 {
			writers++
		}
		if writers == 1 {
			single++
		} else {
			multi++
		}
	}
	if single <= multi {
		t.Errorf("water: %d single-writer vs %d multi-writer shared lines; ownership should dominate", single, multi)
	}
}

func TestLocusChannelBandIsGloballyWritten(t *testing.T) {
	// The channel band (grid rows 0-1) must be written by many processors —
	// it is the uncoverable contended region.
	tr, _ := sharingOf(t, "locus", false)
	g := memory.DefaultGeometry()
	// Band rows are the first 2*1024 cells of the grid: find the grid base
	// as the smallest line address in the trace above the region base.
	const gridBase = 0x5000_0000
	bandEnd := memory.Addr(gridBase + 2*1024*4)
	writers := uint64(0)
	for proc, s := range tr.Streams {
		for _, e := range s {
			if e.Kind == trace.Write && e.Addr >= gridBase && e.Addr < bandEnd {
				writers |= 1 << uint(proc)
			}
		}
	}
	n := 0
	for w := writers; w != 0; w &= w - 1 {
		n++
	}
	if n < tr.Procs()/2 {
		t.Errorf("channel band written by only %d of %d processors", n, tr.Procs())
	}
	_ = g
}

func TestKernelGapsAreModest(t *testing.T) {
	// The CPU model charges one cycle per instruction; kernels encode
	// compute as gaps. Sanity-bound them so a typo (gap 50000) cannot
	// silently distort calibration.
	for _, w := range All() {
		tr, _, err := w.Generate(Params{Scale: 0.02, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range tr.Streams {
			for _, e := range s {
				if e.Gap > 100 {
					t.Fatalf("%s: event gap %d is implausibly large", w.Name, e.Gap)
				}
			}
		}
	}
}

func TestWorkloadRefsNearTarget(t *testing.T) {
	// At scale 1 every workload should produce roughly 10^5 demand refs per
	// process (the calibrated trace length).
	for _, w := range All() {
		tr, _, err := w.Generate(Params{Scale: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		per := tr.DemandRefs() / tr.Procs()
		if per < 70_000 || per > 150_000 {
			t.Errorf("%s: %d refs/proc outside the calibrated band", w.Name, per)
		}
	}
}
