package workload

import (
	"busprefetch/internal/memory"
)

// LocusRoute models the paper's LocusRoute: a commercial-quality VLSI
// standard-cell router (part of SPLASH). Its traced behaviour: a large
// shared cost grid accessed with strong spatial locality (routes run along
// rows), geographic partitioning that gives each processor mostly-private
// regions with overlap at the edges (moderate, sequential write sharing),
// lock-protected work distribution and no barriers, and a moderate miss rate
// (NP processor utilization .54-.64).
const (
	locusGridCols   = 1024 // grid width in cells (4 bytes each)
	locusGridRows   = 60   // grid height (six rows per processor)
	locusWireLen    = 32   // cells traversed per wire
	locusTries      = 2    // candidate rows evaluated per wire (read-only)
	locusPrivate    = 5    // private references per grid cell committed
	locusOverlapPct = 15   // chance a wire lands outside the home region
	locusBandPct    = 30   // chance a wire routes through the global channel band
	locusJumpPct    = 8    // chance the routing cursor jumps to a new area
	locusGap        = 4    // instruction cycles between references
	locusRefsPerK   = 110  // thousand demand refs per processor at scale 1
)

// LocusRoute returns the LocusRoute workload.
func LocusRoute() *Workload {
	return &Workload{
		Name:         "locus",
		Description:  "commercial-quality VLSI standard cell router (SPLASH)",
		DefaultProcs: 10,
		plan:         planLocus,
	}
}

// locusPlan is the fixed layout and schedule shared by all processors.
type locusPlan struct {
	p        Params
	grid     memory.Region
	wireLock memory.Region
	wireCtr  memory.Region
	stats    memory.Region
	wireData []memory.Addr
	wires    int
}

func planLocus(p Params) (procPlan, Info, error) {
	ls := p.Geometry.LineSize
	lay, err := memory.NewLayout(0x5000_0000, ls)
	if err != nil {
		return nil, Info{}, err
	}

	grid := lay.AllocLines("cost-grid", locusGridCols*locusGridRows*memory.WordSize, true)
	wireLock := lay.AllocLines("wire-queue-lock", ls, true)
	wireCtr := lay.AllocLines("wire-queue-counter", ls, true)
	// Per-processor routing statistics packed one word apiece into a shared
	// array — the classic false-sharing layout the real program exhibited
	// in its per-processor counters.
	stats := lay.AllocLines("route-stats", p.Procs*memory.WordSize, true)
	wireData := make([]memory.Addr, p.Procs)
	for i := 0; i < p.Procs; i++ {
		wireData[i] = lay.AllocLines("wire-scratch", 4096, false).Base
	}

	refsPerWire := locusWireLen * (locusTries + 2 + locusPrivate)
	wires := int(float64(locusRefsPerK*1000) * p.Scale / float64(refsPerWire))
	if wires < 1 {
		wires = 1
	}

	info := Info{
		Description: "wire routing over a shared cost grid with geographic locality",
		DataSet:     int(lay.Top() - 0x5000_0000),
		SharedData:  grid.Size + 2*ls,
		Regions:     lay.Regions(),
	}
	return &locusPlan{
		p: p, grid: grid, wireLock: wireLock, wireCtr: wireCtr,
		stats: stats, wireData: wireData, wires: wires,
	}, info, nil
}

func (pl *locusPlan) emit(proc int, b *builder) {
	p := pl.p
	grid, wireLock, wireCtr, stats, wireData := pl.grid, pl.wireLock, pl.wireCtr, pl.stats, pl.wireData
	cellAddr := func(row, col int) memory.Addr {
		return grid.Base + memory.Addr((row*locusGridCols+col)*memory.WordSize)
	}
	rowsPerProc := locusGridRows / p.Procs
	r := newRNG(p.Seed, uint64(proc)+401)
	scratchWords := 4096 / memory.WordSize
	sw := 0
	homeRow := proc * rowsPerProc
	cursor := r.Intn(locusGridCols - locusWireLen)
	for w := 0; w < pl.wires; w++ {
		// Claim the next wire from the shared queue.
		b.Instr(locusGap)
		b.Lock(wireLock.Base)
		b.Instr(2)
		b.Read(wireCtr.Base)
		b.Instr(1)
		b.Write(wireCtr.Base)
		b.Unlock(wireLock.Base)

		// Geographic partitioning: wires usually land in the
		// processor's home strip; sometimes they stray into another
		// processor's region (the write-sharing overlap). Successive
		// wires cluster around a moving cursor — routing works one
		// region of the chip at a time — which gives the strong reuse
		// the real program exhibits.
		var row int
		inBand := r.Intn(100) < locusBandPct
		switch {
		case inBand:
			// The congested channel band: two grid rows every
			// processor routes through. Revisited within a few wires
			// (so the prefetch filters see good locality and skip it)
			// but written by everyone — uncoverable invalidation
			// misses, the router's contended heart.
			row = r.Intn(2)
		case r.Intn(100) < locusOverlapPct:
			row = r.Intn(locusGridRows)
		default:
			row = homeRow + r.Intn(rowsPerProc)
		}
		if r.Intn(100) < locusJumpPct {
			cursor = r.Intn(locusGridCols - locusWireLen)
		} else {
			cursor += r.Intn(17) - 8
			if cursor < 0 {
				cursor = 0
			}
			if cursor > locusGridCols-locusWireLen {
				cursor = locusGridCols - locusWireLen
			}
		}
		col := cursor

		// Evaluate candidate rows: read-only cost sweeps.
		for try := 0; try < locusTries; try++ {
			tr := row + try
			if tr >= locusGridRows {
				tr -= locusGridRows
			}
			for c := 0; c < locusWireLen; c++ {
				b.Instr(locusGap)
				b.Read(cellAddr(tr, col+c))
			}
		}
		// Commit the best route: read-modify-write each cell, with
		// private bookkeeping per cell.
		for c := 0; c < locusWireLen; c++ {
			a := cellAddr(row, col+c)
			b.Instr(locusGap)
			b.Read(a)
			for k := 0; k < locusPrivate; k++ {
				sw = (sw + 3) % scratchWords
				b.Instr(locusGap)
				b.Read(wireData[proc] + memory.Addr(sw*memory.WordSize))
			}
			b.Instr(locusGap)
			b.Write(a)
		}
		// Update this processor's word of the packed statistics array.
		sa := stats.Base + memory.Addr(proc*memory.WordSize)
		b.Instr(locusGap)
		b.Write(sa) // atomic add: one read-for-ownership
	}
}
