package workload

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"busprefetch/internal/trace"
)

// The metamorphic suite pins the tentpole equivalence of the streaming
// seam: for every workload kernel, the streamed source, the materialized
// trace, and a BPTR encode/decode round trip are three views of one event
// sequence. Any divergence — a kernel whose plan/emit split drifts from
// its materialized path, a codec that drops a field, a pipe that reorders
// chunks — fails here before it can silently skew a simulation.

// drainSource collects every event of one source processor.
func drainSource(t *testing.T, src trace.Source, proc int) trace.Stream {
	t.Helper()
	it := src.Events(proc)
	defer it.Close()
	var out trace.Stream
	for {
		chunk, err := it.Next()
		if err != nil {
			t.Fatalf("proc %d: source failed: %v", proc, err)
		}
		if chunk == nil {
			return out
		}
		out = append(out, chunk...)
	}
}

// diffStreams reports the first divergence between two event sequences.
func diffStreams(t *testing.T, label string, proc int, got, want trace.Stream) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: proc %d: %d events, want %d", label, proc, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: proc %d event %d: %+v, want %+v", label, proc, i, got[i], want[i])
			return
		}
	}
}

func TestStreamedMaterializedRoundTripAgree(t *testing.T) {
	scales := []float64{0.02, 0.1}
	seeds := []int64{1, 42}
	for _, w := range All() {
		for _, scale := range scales {
			for _, seed := range seeds {
				w, scale, seed := w, scale, seed
				t.Run(fmt.Sprintf("%s/scale%v/seed%d", w.Name, scale, seed), func(t *testing.T) {
					t.Parallel()
					p := Params{Scale: scale, Seed: seed}

					tr, info, err := w.Generate(p)
					if err != nil {
						t.Fatal(err)
					}
					src, sinfo, err := w.Source(p)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(info, sinfo) {
						t.Errorf("Source info %+v != Generate info %+v", sinfo, info)
					}
					if src.Name() != tr.Name || src.Procs() != tr.Procs() {
						t.Fatalf("source header (%q, %d) != trace header (%q, %d)",
							src.Name(), src.Procs(), tr.Name, tr.Procs())
					}

					var buf bytes.Buffer
					if err := trace.Encode(&buf, tr); err != nil {
						t.Fatal(err)
					}
					decoded, err := trace.DecodeSource(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatal(err)
					}

					for proc := 0; proc < tr.Procs(); proc++ {
						diffStreams(t, "streamed vs materialized", proc,
							drainSource(t, src, proc), tr.Streams[proc])
						diffStreams(t, "round trip vs materialized", proc,
							drainSource(t, decoded, proc), tr.Streams[proc])
					}
				})
			}
		}
	}
}

// TestSourceRestartable pins the Source contract the trace cache depends
// on: a second Events call for the same processor replays the identical
// sequence, including when the first iterator was abandoned mid-stream.
func TestSourceRestartable(t *testing.T) {
	w, err := ByName("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	src, _, err := w.Source(Params{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Abandon an iterator after one chunk; the pipe must shut down cleanly.
	it := src.Events(0)
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	it.Close()

	first := drainSource(t, src, 0)
	second := drainSource(t, src, 0)
	diffStreams(t, "restarted source", 0, second, first)
}
