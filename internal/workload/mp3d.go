package workload

import (
	"busprefetch/internal/memory"
	"busprefetch/internal/restructure"
)

// Mp3d models the SPLASH Mp3d application: rarefied hypersonic particle
// flow. Its traced behaviour: the highest miss rate and bus demand of the
// five programs (it saturates even a fast bus), a large particle array whose
// small records are interleaved across processors (massive false sharing), a
// large shared space-cell array accessed with poor locality, and barrier
// synchronization each time step. Processor utilization without prefetching
// was only .22-.39, so Mp3d had the most latency to hide and showed the
// paper's best speedups on a fast bus — and degradations once the bus
// saturated.
const (
	mp3dParticles   = 9000 // particle records
	mp3dParticleRec = 12   // bytes per record (3 words)
	mp3dOwnerGroup  = 4    // consecutive particles per ownership group
	mp3dCells       = 4096 // shared space cells (4 bytes each)
	mp3dPrivate     = 11   // private compute references per particle
	mp3dCollidePct  = 45   // chance a particle reads a recently-swept neighbour
	mp3dMovePct     = 35   // chance a particle updates its space cell
	mp3dCounterPct  = 25   // chance a particle updates a reservoir counter
	mp3dGap         = 3    // instruction cycles between references
	mp3dRefsPerK    = 110  // thousand demand refs per processor at scale 1
)

// Mp3d returns the Mp3d workload.
func Mp3d() *Workload {
	return &Workload{
		Name:         "mp3d",
		Description:  "particle flow at extremely low density (SPLASH)",
		DefaultProcs: 12,
		plan:         planMp3d,
	}
}

func mp3dOwner(i, procs int) int { return (i / mp3dOwnerGroup) % procs }

// mp3dPlan is the fixed layout and schedule shared by all processors.
type mp3dPlan struct {
	p         Params
	ls        int
	particles *restructure.Mapper
	cellsR    memory.Region
	counters  memory.Region
	scratch   []memory.Addr
	steps     int
}

func planMp3d(p Params) (procPlan, Info, error) {
	ls := p.Geometry.LineSize
	lay, err := memory.NewLayout(0x2000_0000, ls)
	if err != nil {
		return nil, Info{}, err
	}

	particlesBase := lay.AllocLines("particles", 0, true).Base
	// The paper does not restructure Mp3d ("the other programs were not
	// improved significantly by the current restructuring algorithm"), so
	// the packed, falsely-shared layout is always used.
	particles, err := restructure.Packed(particlesBase, mp3dParticleRec, mp3dParticles)
	if err != nil {
		return nil, Info{}, err
	}
	lay.Record("particles", particlesBase, particles.Size(), true)
	lay.Skip(particles.Size())

	cellsR := lay.AllocLines("cells", mp3dCells*memory.WordSize, true)
	// Global reservoir counters: a handful of words every processor updates
	// while moving particles. They never leave the PWS filter (touched every
	// few particles) yet are stolen by other processors between touches, so
	// their misses are the uncoverable, contended component.
	counters := lay.AllocLines("reservoir-counters", 4*ls, true)
	scratch := make([]memory.Addr, p.Procs)
	for i := 0; i < p.Procs; i++ {
		scratch[i] = lay.AllocLines("scratch", 2048, false).Base
	}

	// Every processor owns the same number of particle groups when
	// mp3dParticles divides evenly; slight imbalance is fine otherwise.
	refsPerParticle := 3 + mp3dPrivate + 1 // pos reads/write + private + ~cell
	ownPerProc := mp3dParticles / p.Procs
	refsPerStep := ownPerProc * refsPerParticle
	steps := int(float64(mp3dRefsPerK*1000)*p.Scale) / refsPerStep
	if steps < 1 {
		steps = 1
	}

	info := Info{
		Description: "rarefied particle flow, time-stepped with barriers",
		DataSet:     int(lay.Top() - 0x2000_0000),
		SharedData:  particles.Size() + cellsR.Size + counters.Size,
		Regions:     lay.Regions(),
	}
	return &mp3dPlan{
		p: p, ls: ls, particles: particles, cellsR: cellsR,
		counters: counters, scratch: scratch, steps: steps,
	}, info, nil
}

func (pl *mp3dPlan) emit(proc int, b *builder) {
	p, ls := pl.p, pl.ls
	particles, cellsR, counters, scratch := pl.particles, pl.cellsR, pl.counters, pl.scratch
	r := newRNG(p.Seed, uint64(proc)+101)
	for step := 0; step < pl.steps; step++ {
		for i := 0; i < mp3dParticles; i++ {
			if mp3dOwner(i, p.Procs) != proc {
				continue
			}
			// Read position/velocity, do the move computation on
			// private data, write the position back.
			b.Instr(mp3dGap)
			b.Read(particles.Word(i, 0))
			b.Instr(mp3dGap)
			b.Read(particles.Word(i, 1))
			for k := 0; k < mp3dPrivate; k++ {
				a := scratch[proc] + memory.Addr((k%(2048/memory.WordSize))*memory.WordSize)
				b.Instr(mp3dGap)
				if k%3 == 2 {
					b.Write(a)
				} else {
					b.Read(a)
				}
			}
			b.Instr(mp3dGap)
			b.Write(particles.Word(i, 2))
			// Collisions read a nearby particle: spatially adjacent
			// records belong to other processors (interleaved
			// ownership) and were written very recently, so these
			// reads have good temporal locality — the PWS filter
			// skips them — yet they still miss on invalidation.
			if r.Intn(100) < mp3dCollidePct {
				j := i - 1 - r.Intn(4*mp3dOwnerGroup)
				if j < 0 {
					j += mp3dParticles
				}
				b.Instr(mp3dGap)
				b.Read(particles.Word(j, 0))
			}
			// Tally the move in the global reservoir counters.
			if r.Intn(100) < mp3dCounterPct {
				ctr := counters.Base + memory.Addr(r.Intn(4)*ls)
				b.Instr(mp3dGap)
				b.Write(ctr) // atomic add: a single read-for-ownership
			}
			// Movement updates the particle's space cell: a
			// pseudo-random walk over a large, poorly-local array.
			if r.Intn(100) < mp3dMovePct {
				c := int((uint64(i)*2654435761 + uint64(step)*40503 + uint64(r.Intn(64))) % mp3dCells)
				ca := cellsR.Base + memory.Addr(c*memory.WordSize)
				b.Instr(mp3dGap)
				b.Read(ca)
				b.Instr(mp3dGap)
				b.Write(ca)
			}
		}
		b.Barrier(uint64(step))
	}
}
