package workload

import (
	"busprefetch/internal/memory"
	"busprefetch/internal/restructure"
)

// Pverify models the paper's Pverify: parallel boolean-circuit equivalence
// checking (Ma et al.). Its traced behaviour: a high miss rate (NP processor
// utilization .18-.41, bus saturation at slow transfers), dominated by
// invalidation misses with a very large false-sharing component — gate
// values are one word each and written by whichever processor evaluates the
// gate, so a cache line's eight values are written by many processors. The
// paper restructures Pverify: blocking the value array by evaluating
// processor removed almost all false sharing (invalidation miss rate down
// about 4x) while slightly increasing non-sharing misses.
//
// The kernel: a levelized circuit. Gates are distributed round-robin;
// evaluating a gate reads its fanin values (scattered — capacity and true
// sharing misses), does private truth-table work, and writes the gate's
// value. A lock-protected shared counter hands out work batches; a barrier
// separates levels.
const (
	pverifyGates    = 8192 // gates in the circuit (32 KB of values)
	pverifyLevels   = 8    // circuit depth (work proceeds level by level)
	pverifyFanin    = 3    // fanin values read per gate
	pverifyHotSpan  = 48   // hot fanins: just-evaluated gates
	pverifyFanSpan  = 512  // later fanins: wider span, poor temporal locality
	pverifyPrivate  = 30   // private compute references per gate
	pverifyBatch    = 128  // gates claimed per queue lock
	pverifyGap      = 4    // instruction cycles between references
	pverifyRefsPerK = 110  // thousand demand refs per processor at scale 1
)

// Pverify returns the Pverify workload.
func Pverify() *Workload {
	return &Workload{
		Name:         "pverify",
		Description:  "boolean circuit equivalence checking",
		DefaultProcs: 16,
		plan:         planPverify,
	}
}

func pverifyOwner(gate, procs int) int { return gate % procs }

// pverifyPlan is the fixed layout and schedule shared by all processors.
type pverifyPlan struct {
	p         Params
	ls        int
	values    *restructure.Mapper
	tally     memory.Region
	queueLock memory.Region
	queueCtr  memory.Region
	tables    []memory.Addr
	passes    int
}

func planPverify(p Params) (procPlan, Info, error) {
	ls := p.Geometry.LineSize
	lay, err := memory.NewLayout(0x4000_0000, ls)
	if err != nil {
		return nil, Info{}, err
	}

	// Gate value array: one word per gate. The original layout packs the
	// values, interleaving writers within every line; the restructured
	// program groups each processor's gates together.
	valuesBase := lay.AllocLines("values", 0, true).Base
	var values *restructure.Mapper
	if p.Restructured {
		values, err = restructure.BlockedByOwner(valuesBase, memory.WordSize, pverifyGates, ls, p.Procs,
			func(i int) int { return pverifyOwner(i, p.Procs) })
	} else {
		values, err = restructure.Packed(valuesBase, memory.WordSize, pverifyGates)
	}
	if err != nil {
		return nil, Info{}, err
	}
	lay.Record("values", valuesBase, values.Size(), true)
	lay.Skip(values.Size())

	// The per-level output tally: one heavily contended line every
	// processor updates as it retires gates. Touched constantly (stays in
	// the PWS filter) but stolen between touches — the uncoverable misses.
	tally := lay.AllocLines("level-tally", pverifyLevels*ls, true)
	queueLock := lay.AllocLines("queue-lock", ls, true)
	queueCtr := lay.AllocLines("queue-counter", ls, true)
	tables := make([]memory.Addr, p.Procs)
	for i := 0; i < p.Procs; i++ {
		tables[i] = lay.AllocLines("truth-tables", 4096, false).Base
	}

	gatesPerLevel := pverifyGates / pverifyLevels
	refsPerGate := 2*pverifyFanin + 1 + pverifyPrivate
	ownPerLevel := gatesPerLevel / p.Procs
	refsNeeded := int(float64(pverifyRefsPerK*1000) * p.Scale)
	passes := refsNeeded / (pverifyLevels * ownPerLevel * refsPerGate)
	if passes < 1 {
		passes = 1
	}

	info := Info{
		Description: "levelized gate evaluation with a shared work queue",
		DataSet:     int(lay.Top() - 0x4000_0000),
		SharedData:  values.Size() + 2*ls,
		Regions:     lay.Regions(),
	}
	return &pverifyPlan{
		p: p, ls: ls, values: values, tally: tally,
		queueLock: queueLock, queueCtr: queueCtr, tables: tables, passes: passes,
	}, info, nil
}

func (pl *pverifyPlan) emit(proc int, b *builder) {
	p, ls := pl.p, pl.ls
	values, tally, queueLock, queueCtr, tables := pl.values, pl.tally, pl.queueLock, pl.queueCtr, pl.tables
	gatesPerLevel := pverifyGates / pverifyLevels
	ownPerLevel := gatesPerLevel / p.Procs
	r := newRNG(p.Seed, uint64(proc)+301)
	tableWords := 4096 / memory.WordSize
	tw := 0
	bar := uint64(0)
	for pass := 0; pass < pl.passes; pass++ {
		for level := 0; level < pverifyLevels; level++ {
			levelBase := level * gatesPerLevel
			// Claim work in batches through the shared queue.
			for batch := 0; batch < ownPerLevel; batch += pverifyBatch {
				b.Instr(pverifyGap)
				b.Lock(queueLock.Base)
				b.Instr(2)
				b.Read(queueCtr.Base)
				b.Instr(1)
				b.Write(queueCtr.Base)
				b.Unlock(queueLock.Base)
				n := pverifyBatch
				if batch+n > ownPerLevel {
					n = ownPerLevel - batch
				}
				for g := 0; g < n; g++ {
					// The gate this processor evaluates: round-robin
					// within the level, so adjacent gates (adjacent
					// value words) belong to different processors.
					gate := levelBase + (batch+g)*p.Procs + proc
					if gate >= levelBase+gatesPerLevel {
						gate = levelBase + (gate % gatesPerLevel)
					}
					// Read fanins from the preceding gates. Levelized
					// circuits connect mostly to nearby levels, so one
					// fanin comes from the immediately preceding gates —
					// values other processors are writing *right now*,
					// with good temporal locality (the PWS filter skips
					// them, leaving their invalidation misses uncovered)
					// — and the rest from a wider span with poor
					// temporal locality (PWS prefetches those).
					for f := 0; f < pverifyFanin; f++ {
						span := pverifyHotSpan
						if f == pverifyFanin-1 {
							span = pverifyFanSpan
						}
						if span > pverifyGates {
							span = pverifyGates
						}
						src := gate - 2 - r.Intn(span)
						if src < 0 {
							src += pverifyGates
						}
						// Multi-bit signals: read the gate's value and
						// its owner's next value — adjacent within an
						// owner's block after restructuring, two lines
						// apart in the original interleaved layout.
						b.Instr(pverifyGap)
						b.Read(values.Elem(src))
						b.Instr(pverifyGap)
						b.Read(values.Elem((src + p.Procs) % pverifyGates))
					}
					// Private truth-table evaluation.
					for k := 0; k < pverifyPrivate; k++ {
						tw = (tw + 7) % tableWords
						a := tables[proc] + memory.Addr(tw*memory.WordSize)
						b.Instr(pverifyGap)
						if k%5 == 4 {
							b.Write(a)
						} else {
							b.Read(a)
						}
					}
					b.Instr(pverifyGap)
					b.Write(values.Elem(gate))
					// Retire the gate into the level tally.
					if g%2 == 0 {
						ta := tally.Base + memory.Addr(level*ls)
						b.Instr(pverifyGap)
						b.Write(ta) // atomic add: one read-for-ownership
					}
				}
			}
		}
		// One barrier per verification pass; within a pass the work
		// queue, not barriers, orders the computation.
		b.Barrier(bar)
		bar++
	}
}
