package workload

import (
	"sync"
	"testing"
)

// TestConcurrentGenerateNoSharedState is the regression test for
// cross-goroutine builder sharing. The parallel experiment engine generates
// traces from worker goroutines (one generation per cache key, but different
// keys of the same workload run concurrently), so Generate must not share
// mutable builder or RNG state across calls. Run under -race this fails the
// moment such sharing returns; without -race it still verifies that
// concurrent generations are bit-for-bit deterministic and produce disjoint
// trace objects.
func TestConcurrentGenerateNoSharedState(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			const goroutines = 6
			traces := make([]*traceFingerprint, goroutines)
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// The same *Workload value, concurrently — exactly what
					// the engine's trace cache does for the original and
					// restructured variants of one workload.
					tr, _, err := w.Generate(Params{Scale: 0.05, Seed: 7, Restructured: i%2 == 1})
					if err != nil {
						t.Errorf("generation %d: %v", i, err)
						return
					}
					traces[i] = &traceFingerprint{tr.DemandRefs(), tr.Events(), tr.Procs()}
				}(i)
			}
			wg.Wait()
			// Same parameters => identical traces, independent of interleaving.
			for i := 2; i < goroutines; i++ {
				if traces[i] == nil || traces[i%2] == nil {
					continue
				}
				if *traces[i] != *traces[i%2] {
					t.Errorf("generation %d produced %+v, generation %d produced %+v",
						i, *traces[i], i%2, *traces[i%2])
				}
			}
		})
	}
}

// traceFingerprint is a comparable fingerprint of a generated trace.
type traceFingerprint struct {
	demandRefs int
	events     int
	procs      int
}
