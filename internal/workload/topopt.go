package workload

import (
	"busprefetch/internal/memory"
	"busprefetch/internal/restructure"
)

// Topopt models the paper's Topopt: topological optimization of VLSI
// circuits by parallel simulated annealing (Devadas & Newton). Its traced
// behaviour (paper §3.2, §4.3-4.4): a *small* shared data set with a high
// degree of fine-grain write sharing (packed two-word cell records share
// cache lines, so most invalidation misses are false sharing), a large
// number of conflict misses even though the data is small (the real
// program's private tables collide in the direct-mapped cache), and
// lock-based synchronization around moves.
//
// The kernel: processors repeatedly pick two random cells, lock their
// regions in address order, read both cells and a few topological
// neighbours, evaluate the move against two private cost tables that map to
// the same cache sets (the conflict-miss source — and, with prefetching, the
// source of prefetches that evict each other, the paper's Topopt
// pathology), and accept the move with fixed probability, writing both
// cells back.
//
// Restructuring (paper Tables 4-5) pads each cell onto its own line,
// eliminating the false sharing, and offsets the second private table by a
// line, removing the set collision — reproducing the paper's observation
// that restructured Topopt lost most invalidation misses *and* half its
// non-sharing misses.
const (
	topoptCells      = 2048 // shared cell records
	topoptCellRec    = 8    // bytes per cell (2 words): 4 cells per line
	topoptLocks      = 64   // region locks
	topoptHomePct    = 70   // chance the move's first cell is in the home region
	topoptScratch    = 140  // private compute references per move
	topoptAcceptPct  = 30   // move acceptance probability (percent)
	topoptGap        = 5    // instruction cycles between references
	topoptRefsPerK   = 110  // thousand demand refs per processor at scale 1
	topoptTableWords = 2048 // entries in each conflicting private table
)

// Topopt returns the Topopt workload.
func Topopt() *Workload {
	return &Workload{
		Name:         "topopt",
		Description:  "VLSI topological optimization via parallel simulated annealing",
		DefaultProcs: 10,
		plan:         planTopopt,
	}
}

// topoptPlan is the fixed layout and schedule shared by all processors.
type topoptPlan struct {
	p       Params
	ls      int
	cells   *restructure.Mapper
	locks   memory.Region
	cost    memory.Region
	tablesA []memory.Addr
	tablesB []memory.Addr
	scratch []memory.Addr
	moves   int
}

func planTopopt(p Params) (procPlan, Info, error) {
	ls := p.Geometry.LineSize
	lay, err := memory.NewLayout(0x1000_0000, ls)
	if err != nil {
		return nil, Info{}, err
	}

	// Shared cell array. Cells are "owned" (mostly optimized) by processor
	// cell%procs. In the original program cells were laid out in discovery
	// order, interleaving owners within every cache line — each 32-byte
	// line holds four two-word cells of four different processors, the
	// false-sharing layout. The restructured program (Jeremiassen & Eggers)
	// groups each processor's cells contiguously, which both removes the
	// false sharing and improves locality, with no growth in footprint.
	var cells *restructure.Mapper
	// The cell array occupies the upper half of the cache's set space so it
	// does not collide with the (lower-set) private tables.
	lay.AlignTo(p.Geometry.CacheSize, p.Geometry.CacheSize/2)
	cellsBase := lay.AllocLines("cells", 0, true).Base
	if p.Restructured {
		cells, err = restructure.BlockedByOwner(cellsBase, topoptCellRec, topoptCells, ls, p.Procs,
			func(i int) int { return i % p.Procs })
	} else {
		cells, err = restructure.Packed(cellsBase, topoptCellRec, topoptCells)
	}
	if err != nil {
		return nil, Info{}, err
	}
	lay.Record("cells", cellsBase, cells.Size(), true)
	lay.Skip(cells.Size())

	lay.AlignTo(p.Geometry.CacheSize, 192*ls)              // locks: sets 192-255
	locks := lay.AllocLines("locks", topoptLocks*ls, true) // one lock per line
	// The annealing temperature / global cost accumulator: one line all
	// processors read every move and write on acceptance. It is accessed
	// far too often to leave the PWS temporal-locality filter, so its
	// (frequent) invalidation misses are the component no prefetching
	// strategy covers.
	lay.AlignTo(p.Geometry.CacheSize, 448*ls) // cost: set 448
	cost := lay.AllocLines("global-cost", ls, true)

	// Per-processor private cost tables. In the original layout the two
	// tables sit exactly one cache size apart, so table A entry i and table
	// B entry i map to the same set of the direct-mapped cache and evict
	// each other — the conflict misses the paper attributes to Topopt. The
	// restructured program offsets table B by one line, removing the
	// pathological mapping (the locality improvement the paper observed).
	tableBytes := topoptTableWords * memory.WordSize
	tablesA := make([]memory.Addr, p.Procs)
	tablesB := make([]memory.Addr, p.Procs)
	for i := 0; i < p.Procs; i++ {
		lay.AlignTo(p.Geometry.CacheSize, 0)
		a := lay.Alloc("tableA", tableBytes, false)
		if !p.Restructured {
			// Original program: table B lands exactly one cache size after
			// table A, so A[j] and B[j] collide in the direct-mapped cache.
			lay.AlignTo(p.Geometry.CacheSize, 0)
		}
		b := lay.Alloc("tableB", tableBytes, false)
		tablesA[i], tablesB[i] = a.Base, b.Base
	}
	scratch := make([]memory.Addr, p.Procs)
	for i := 0; i < p.Procs; i++ {
		lay.AlignTo(p.Geometry.CacheSize, 128*ls) // scratch: sets 128-191
		scratch[i] = lay.AllocLines("scratch", 2048, false).Base
	}

	moves := int(float64(topoptRefsPerK*1000) * p.Scale / 152.0) // ~152 refs per move
	if moves < 1 {
		moves = 1
	}

	info := Info{
		Description: "parallel simulated annealing on a VLSI circuit",
		DataSet:     int(lay.Top() - 0x1000_0000),
		SharedData:  cells.Size() + locks.Size + cost.Size,
		Regions:     lay.Regions(),
	}
	return &topoptPlan{
		p: p, ls: ls, cells: cells, locks: locks, cost: cost,
		tablesA: tablesA, tablesB: tablesB, scratch: scratch, moves: moves,
	}, info, nil
}

func (pl *topoptPlan) emit(proc int, b *builder) {
	p, ls := pl.p, pl.ls
	cells, locks, cost := pl.cells, pl.locks, pl.cost
	tablesA, tablesB, scratch := pl.tablesA, pl.tablesB, pl.scratch
	r := newRNG(p.Seed, uint64(proc)+1)
	readCell := func(c int) {
		b.Instr(topoptGap)
		b.Read(cells.Word(c, 0))
		b.Instr(topoptGap)
		b.Read(cells.Word(c, 1))
	}
	// Moves are biased: a processor mostly optimizes its own cells (so
	// its cells and region locks stay resident and owned), but swap
	// partners come from anywhere — the cross-processor write sharing.
	ownCount := topoptCells / p.Procs
	for m := 0; m < pl.moves; m++ {
		var c1 int
		if r.Intn(100) < topoptHomePct {
			c1 = proc + p.Procs*r.Intn(ownCount)
		} else {
			c1 = r.Intn(topoptCells)
		}
		var c2 int
		if r.Intn(100) < topoptHomePct {
			c2 = proc + p.Procs*r.Intn(ownCount)
		} else {
			c2 = r.Intn(topoptCells)
		}
		region := c1 % topoptLocks
		b.Instr(topoptGap)
		b.Lock(locks.Base + memory.Addr(region*ls))
		checkCost := m%4 == 3
		if checkCost {
			b.Instr(topoptGap)
			b.Read(cost.Base) // current global cost
		}
		readCell(c1)
		readCell(c2)
		// One topological neighbour per endpoint — circuit neighbours
		// belong to the same partition, i.e. the same owner.
		b.Instr(topoptGap)
		b.Read(cells.Word((c1+p.Procs*(1+r.Intn(5)))%topoptCells, 0))
		b.Instr(topoptGap)
		b.Read(cells.Word((c2+p.Procs*(1+r.Intn(5)))%topoptCells, 0))
		// Cost evaluation: one colliding pair of table lookups plus
		// private scratch work.
		// Table lookups cycle through a small hot window, so they stay
		// resident — except that in the original layout A[j] and B[j]
		// share a cache set and evict each other on every move.
		j := (m * 7) % 512
		b.Instr(topoptGap)
		b.Read(tablesA[proc] + memory.Addr(j*memory.WordSize))
		b.Instr(topoptGap)
		b.Read(tablesB[proc] + memory.Addr(j*memory.WordSize))
		for k := 0; k < topoptScratch; k++ {
			a := scratch[proc] + memory.Addr((k%(2048/memory.WordSize))*memory.WordSize)
			b.Instr(topoptGap)
			if k%4 == 3 {
				b.Write(a)
			} else {
				b.Read(a)
			}
		}
		if r.Intn(100) < topoptAcceptPct {
			// Accept: swap the two cells' placements.
			b.Instr(topoptGap)
			b.Write(cells.Word(c1, 0))
			b.Instr(topoptGap)
			b.Write(cells.Word(c1, 1))
			b.Instr(topoptGap)
			b.Write(cells.Word(c2, 0))
			b.Instr(topoptGap)
			b.Write(cells.Word(c2, 1))
			if checkCost {
				b.Instr(topoptGap)
				b.Write(cost.Base) // publish the new global cost
			}
		}
		b.Unlock(locks.Base + memory.Addr(region*ls))
	}
}
