package workload

import (
	"busprefetch/internal/memory"
	"busprefetch/internal/restructure"
)

// Water models the SPLASH Water application: forces and potentials in a
// system of liquid water molecules. Its traced behaviour: the best cache
// behaviour of the five programs — the molecule array is small and heavily
// reused, so the miss rate is low, processor utilization is already .81-.82
// without prefetching, and prefetching has almost nothing to gain (the
// paper's bound: best possible speedup about 1.2). Most remaining misses are
// invalidation misses from the per-step position updates. The computation is
// barrier-phased: an O(n^2) force phase reading every other molecule's
// position, then an update phase writing the owner's molecules.
const (
	waterMols      = 512 // molecules
	waterRec       = 24  // bytes per molecule record (6 words)
	waterSample    = 48  // interactions computed per owned molecule per step
	waterPrivate   = 2   // private accumulator references per interaction
	waterUpdatePct = 15  // percent of owned molecules rewritten per step
	waterGap       = 3   // instruction cycles between references
	waterRefsPerK  = 110 // thousand demand refs per processor at scale 1
)

// Water returns the Water workload.
func Water() *Workload {
	return &Workload{
		Name:         "water",
		Description:  "forces and potentials in liquid water (SPLASH)",
		DefaultProcs: 10,
		plan:         planWater,
	}
}

// waterPlan is the fixed layout and schedule shared by all processors.
type waterPlan struct {
	p          Params
	mols       *restructure.Mapper
	energyLock memory.Region
	energy     memory.Region
	scratch    []memory.Addr
	steps      int
}

func planWater(p Params) (procPlan, Info, error) {
	ls := p.Geometry.LineSize
	lay, err := memory.NewLayout(0x3000_0000, ls)
	if err != nil {
		return nil, Info{}, err
	}

	molsBase := lay.AllocLines("molecules", 0, true).Base
	mols, err := restructure.Packed(molsBase, waterRec, waterMols)
	if err != nil {
		return nil, Info{}, err
	}
	lay.Record("molecules", molsBase, mols.Size(), true)
	lay.Skip(mols.Size())
	// The global potential-energy accumulator, guarded by a lock as in the
	// real program. Synchronization variables are never prefetch
	// candidates, so the accumulator's invalidation misses are the
	// uncoverable contended component of Water's (small) miss rate.
	energyLock := lay.AllocLines("energy-lock", ls, true)
	energy := lay.AllocLines("energy", ls, true)
	scratch := make([]memory.Addr, p.Procs)
	for i := 0; i < p.Procs; i++ {
		scratch[i] = lay.AllocLines("scratch", 1024, false).Base
	}

	own := waterMols / p.Procs
	refsPerStep := own*waterSample*(2+waterPrivate) + own*5*waterUpdatePct/100
	steps := int(float64(waterRefsPerK*1000)*p.Scale) / refsPerStep
	if steps < 1 {
		steps = 1
	}

	info := Info{
		Description: "O(n^2) molecular dynamics, barrier-phased",
		DataSet:     int(lay.Top() - 0x3000_0000),
		SharedData:  mols.Size() + energyLock.Size + energy.Size,
		Regions:     lay.Regions(),
	}
	return &waterPlan{
		p: p, mols: mols, energyLock: energyLock, energy: energy,
		scratch: scratch, steps: steps,
	}, info, nil
}

func (pl *waterPlan) emit(proc int, b *builder) {
	p := pl.p
	mols, energyLock, energy, scratch := pl.mols, pl.energyLock, pl.energy, pl.scratch
	// Molecules are block-partitioned: processor p owns the contiguous
	// range [p*M/P, (p+1)*M/P).
	ownStart := func(proc int) int { return proc * waterMols / p.Procs }
	ownEnd := func(proc int) int { return (proc + 1) * waterMols / p.Procs }
	r := newRNG(p.Seed, uint64(proc)+201)
	scratchWords := 1024 / memory.WordSize
	sc := 0
	for step := 0; step < pl.steps; step++ {
		// Force phase: for each owned molecule, interact with a sample
		// of all molecules, reading their positions and accumulating
		// forces in private storage.
		// The sweep visits the following molecules in index order (the
		// triangular O(n^2) interaction loop of the real program), so
		// each shared line is read several times consecutively — good
		// temporal locality, one coverable miss per invalidated line.
		for i := ownStart(proc); i < ownEnd(proc); i++ {
			// Periodically fold accumulated contributions into the
			// lock-guarded global energy sum.
			if i%8 == 7 {
				b.Instr(waterGap)
				b.Lock(energyLock.Base)
				b.Instr(2)
				b.Read(energy.Base)
				b.Instr(2)
				b.Write(energy.Base)
				b.Unlock(energyLock.Base)
			}
			start := r.Intn(waterMols)
			for k := 0; k < waterSample; k++ {
				j := (start + k) % waterMols
				b.Instr(waterGap)
				b.Read(mols.Word(j, 0))
				b.Instr(waterGap)
				b.Read(mols.Word(j, 1))
				for q := 0; q < waterPrivate; q++ {
					sc = (sc + 1) % scratchWords
					a := scratch[proc] + memory.Addr(sc*memory.WordSize)
					b.Instr(waterGap)
					if q == waterPrivate-1 {
						b.Write(a)
					} else {
						b.Read(a)
					}
				}
			}
		}
		b.Barrier(uint64(step * 2))
		// Update phase: owners integrate and write the positions of the
		// molecules that moved appreciably this step.
		for i := ownStart(proc); i < ownEnd(proc); i++ {
			if r.Intn(100) >= waterUpdatePct {
				continue
			}
			b.Instr(waterGap)
			b.Read(mols.Word(i, 3))
			b.Instr(waterGap)
			b.Read(mols.Word(i, 4))
			b.Instr(waterGap)
			b.Write(mols.Word(i, 0))
			b.Instr(waterGap)
			b.Write(mols.Word(i, 1))
			b.Instr(waterGap)
			b.Write(mols.Word(i, 2))
		}
		b.Barrier(uint64(step*2 + 1))
	}
}
