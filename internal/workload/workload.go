package workload

import (
	"fmt"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

// Params configures trace generation.
type Params struct {
	// Procs is the number of processors; 0 selects the workload default.
	Procs int
	// Scale multiplies the trace length; 1.0 is the calibrated default
	// (roughly 10^5 references per processor). Must be > 0; values below
	// about 0.1 leave too few references for stable statistics.
	Scale float64
	// Seed perturbs the deterministic generators.
	Seed int64
	// Restructured applies the false-sharing-removing layout transformation
	// of internal/restructure (meaningful for Topopt and Pverify, the two
	// programs the paper restructures; other workloads ignore it).
	Restructured bool
	// Geometry supplies the line size used for layout decisions; the zero
	// value selects memory.DefaultGeometry().
	Geometry memory.Geometry
}

func (p Params) withDefaults(defProcs int) Params {
	if p.Procs == 0 {
		p.Procs = defProcs
	}
	if p.Scale == 0 {
		p.Scale = 1.0
	}
	if p.Geometry == (memory.Geometry{}) {
		p.Geometry = memory.DefaultGeometry()
	}
	return p
}

// DefaultProcs is the processor count used for all workloads, standing in
// for the paper's per-program process counts (unreadable in the source
// text); twelve processors is in the range contemporaneous Symmetry studies
// used and reproduces the paper's bus-utilization levels.
const DefaultProcs = 12

// Info describes a workload for reports (the paper's Table 1).
type Info struct {
	Name        string
	Description string
	// DataSet is the total bytes of workload data structures.
	DataSet int
	// SharedData is the bytes of intentionally shared structures.
	SharedData int
	Procs      int
	// Regions lists the workload's named data structures (several entries
	// may share a name, e.g. one scratch region per processor); pass them
	// to sim.Config.Regions to attribute misses to data structures.
	Regions []memory.Region
}

// procPlan is a workload's fixed layout and schedule: everything the
// generator computes before the per-processor loop. emit replays one
// processor's loop body into b; it must be a pure function of (plan,
// proc) so processors can be generated independently, in any order,
// concurrently, and repeatedly with identical results.
type procPlan interface {
	emit(proc int, b *builder)
}

// Workload is a named trace generator.
type Workload struct {
	// Name is the canonical lower-case name (e.g. "mp3d").
	Name string
	// Description is a one-line summary echoing the paper's Table 1.
	Description string
	// DefaultProcs is the processor count used when Params.Procs is zero.
	DefaultProcs int
	plan         func(p Params) (procPlan, Info, error)
}

// planFor validates parameters and computes the workload's plan.
func (w *Workload) planFor(p Params) (Params, procPlan, Info, error) {
	p = p.withDefaults(w.DefaultProcs)
	if p.Scale <= 0 {
		return p, nil, Info{}, fmt.Errorf("workload %s: scale %v must be positive", w.Name, p.Scale)
	}
	if p.Procs < 2 || p.Procs > 64 {
		return p, nil, Info{}, fmt.Errorf("workload %s: procs %d outside [2, 64]", w.Name, p.Procs)
	}
	if err := p.Geometry.Validate(); err != nil {
		return p, nil, Info{}, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	pl, info, err := w.plan(p)
	if err != nil {
		return p, nil, Info{}, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	info.Name = w.Name
	info.Procs = p.Procs
	return p, pl, info, nil
}

// Generate builds the materialized trace (and its Info) for the given
// parameters.
func (w *Workload) Generate(p Params) (*trace.Trace, Info, error) {
	p, pl, info, err := w.planFor(p)
	if err != nil {
		return nil, Info{}, err
	}
	t := &trace.Trace{Name: w.Name, Streams: make([]trace.Stream, p.Procs)}
	for proc := 0; proc < p.Procs; proc++ {
		b := &builder{}
		pl.emit(proc, b)
		t.Streams[proc] = b.events
	}
	if err := t.Validate(); err != nil {
		return nil, Info{}, fmt.Errorf("workload %s: generated invalid trace: %w", w.Name, err)
	}
	return t, info, nil
}

// Source returns the workload as a streaming trace.Source: planning
// (layout, sizing) happens up front, but events are produced lazily,
// chunk by chunk, as each processor's iterator is drained — the no-
// materialization fast path into the annotator and the simulator. The
// source is restartable and its streams are byte-identical to
// Generate's.
func (w *Workload) Source(p Params) (trace.Source, Info, error) {
	p, pl, info, err := w.planFor(p)
	if err != nil {
		return nil, Info{}, err
	}
	return &workloadSource{name: w.Name, procs: p.Procs, plan: pl}, info, nil
}

type workloadSource struct {
	name  string
	procs int
	plan  procPlan
}

func (s *workloadSource) Name() string { return s.name }

func (s *workloadSource) Procs() int { return s.procs }

func (s *workloadSource) Events(proc int) trace.Iterator {
	pl := s.plan
	return trace.NewPipe(func(flush func([]trace.Event) []trace.Event) error {
		b := &builder{sink: func(s trace.Stream) trace.Stream { return flush(s) }}
		pl.emit(proc, b)
		b.finish()
		return nil
	})
}

// All returns the five workloads in the paper's presentation order.
func All() []*Workload {
	return []*Workload{Topopt(), Mp3d(), LocusRoute(), Pverify(), Water()}
}

// ByName returns the named workload (case-insensitive).
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if equalFold(w.Name, name) {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
