package workload

import (
	"reflect"
	"testing"

	"busprefetch/internal/memory"
	"busprefetch/internal/trace"
)

func TestAllWorkloadsListed(t *testing.T) {
	names := []string{}
	for _, w := range All() {
		names = append(names, w.Name)
	}
	want := []string{"topopt", "mp3d", "locus", "pverify", "water"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("All() = %v, want %v", names, want)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("MP3D")
	if err != nil || w.Name != "mp3d" {
		t.Errorf("ByName(MP3D) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestGeneratedTracesValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr, info, err := w.Generate(Params{Scale: 0.05, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Procs() != w.DefaultProcs {
				t.Errorf("procs = %d, want %d", tr.Procs(), w.DefaultProcs)
			}
			if info.DataSet <= 0 || info.SharedData <= 0 {
				t.Errorf("info missing sizes: %+v", info)
			}
			if tr.DemandRefs() == 0 {
				t.Error("no demand references")
			}
		})
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	for _, w := range All() {
		a, _, err := w.Generate(Params{Scale: 0.03, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := w.Generate(Params{Scale: 0.03, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", w.Name)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	w := Mp3d()
	a, _, err := w.Generate(Params{Scale: 0.03, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := w.Generate(Params{Scale: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical traces")
	}
}

func TestScaleControlsLength(t *testing.T) {
	w := Water()
	small, _, err := w.Generate(Params{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := w.Generate(Params{Scale: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Lengths are quantized to whole steps, so demand a loose factor.
	if big.DemandRefs() < 3*small.DemandRefs() {
		t.Errorf("scale 1.0 trace (%d refs) not much larger than scale 0.1 (%d refs)",
			big.DemandRefs(), small.DemandRefs())
	}
}

func TestParamsValidation(t *testing.T) {
	w := Water()
	if _, _, err := w.Generate(Params{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
	if _, _, err := w.Generate(Params{Procs: 1, Scale: 0.1}); err == nil {
		t.Error("single processor accepted (needs >= 2 for sharing)")
	}
	if _, _, err := w.Generate(Params{Procs: 100, Scale: 0.1}); err == nil {
		t.Error("100 processors accepted (limit is 64)")
	}
}

func TestProcsOverride(t *testing.T) {
	w := Mp3d()
	tr, info, err := w.Generate(Params{Procs: 6, Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Procs() != 6 || info.Procs != 6 {
		t.Errorf("procs = %d/%d, want 6", tr.Procs(), info.Procs)
	}
}

func TestWorkloadsExhibitWriteSharing(t *testing.T) {
	g := memory.DefaultGeometry()
	for _, w := range All() {
		tr, _, err := w.Generate(Params{Scale: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		prof := trace.AnalyzeSharing(tr, g)
		_, _, ws := prof.Counts()
		if ws == 0 {
			t.Errorf("%s: no write-shared lines — the paper's whole topic", w.Name)
		}
	}
}

// TestRestructuredLayoutsReduceLineSharing verifies the §4.4 transformation
// at the trace level: the restructured variants of Topopt and Pverify have
// far fewer write-shared lines whose writers differ from their readers.
func TestRestructuredChangesLayoutOnly(t *testing.T) {
	for _, name := range []string{"topopt", "pverify"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		orig, _, err := w.Generate(Params{Scale: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		restr, _, err := w.Generate(Params{Scale: 0.05, Seed: 1, Restructured: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := restr.Validate(); err != nil {
			t.Fatal(err)
		}
		// The computation is unchanged: same reference counts per processor.
		if orig.DemandRefs() != restr.DemandRefs() {
			t.Errorf("%s: restructuring changed the demand reference count (%d vs %d)",
				name, orig.DemandRefs(), restr.DemandRefs())
		}
	}
}

func TestTable1Characteristics(t *testing.T) {
	// The calibrated workload characteristics the rest of the suite relies
	// on: shared data sizes and per-workload process counts.
	expected := map[string]int{"topopt": 10, "mp3d": 12, "locus": 10, "pverify": 16, "water": 10}
	for _, w := range All() {
		if expected[w.Name] != w.DefaultProcs {
			t.Errorf("%s: DefaultProcs = %d, want %d", w.Name, w.DefaultProcs, expected[w.Name])
		}
	}
}

func TestBuilderGapAccumulation(t *testing.T) {
	b := &builder{}
	b.Instr(3)
	b.Instr(2)
	b.Read(0x100)
	b.Write(0x104)
	if len(b.events) != 2 {
		t.Fatalf("events = %d", len(b.events))
	}
	if b.events[0].Gap != 5 {
		t.Errorf("gap = %d, want 5", b.events[0].Gap)
	}
	if b.events[1].Gap != 0 {
		t.Errorf("second gap = %d, want 0", b.events[1].Gap)
	}
	if b.Refs() != 2 {
		t.Errorf("Refs = %d", b.Refs())
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a := newRNG(1, 2)
	b := newRNG(1, 2)
	for i := 0; i < 100; i++ {
		x, y := a.Intn(1000), b.Intn(1000)
		if x != y {
			t.Fatal("rng not deterministic")
		}
		if x < 0 || x >= 1000 {
			t.Fatalf("Intn out of range: %d", x)
		}
	}
	c := newRNG(1, 3)
	same := true
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different streams produced identical sequences")
	}
}
